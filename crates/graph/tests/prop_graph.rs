//! Property tests for the graph substrate: the bitset is checked against a
//! `HashSet<usize>` reference model, and graph mutation against a naive
//! edge-set model. These are the foundations every higher layer (Algorithm
//! 2 validity bits, formulas (1)–(5) candidate algebra) builds on.

use std::collections::HashSet;

use gc_graph::{BitSet, GraphBuilder, LabeledGraph};
use proptest::prelude::*;

/// Ops applied to both the BitSet under test and a HashSet model.
#[derive(Debug, Clone)]
enum BitOp {
    Set(usize),
    Clear(usize),
}

fn bitop() -> impl Strategy<Value = BitOp> {
    prop_oneof![
        (0usize..512).prop_map(BitOp::Set),
        (0usize..512).prop_map(BitOp::Clear),
    ]
}

proptest! {
    #[test]
    fn bitset_matches_hashset_model(ops in prop::collection::vec(bitop(), 0..200)) {
        let mut bs = BitSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for op in ops {
            match op {
                BitOp::Set(i) => {
                    bs.set(i, true);
                    model.insert(i);
                }
                BitOp::Clear(i) => {
                    bs.set(i, false);
                    model.remove(&i);
                }
            }
        }
        prop_assert_eq!(bs.count_ones(), model.len());
        let mut expected: Vec<usize> = model.iter().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(bs.iter_ones().collect::<Vec<_>>(), expected);
        for i in 0..512 {
            prop_assert_eq!(bs.get(i), model.contains(&i));
        }
    }

    #[test]
    fn bitset_algebra_matches_sets(
        a in prop::collection::hash_set(0usize..256, 0..64),
        b in prop::collection::hash_set(0usize..256, 0..64),
    ) {
        let ba = BitSet::from_indices(a.iter().copied());
        let bb = BitSet::from_indices(b.iter().copied());

        let union: HashSet<usize> = a.union(&b).copied().collect();
        let inter: HashSet<usize> = a.intersection(&b).copied().collect();
        let diff: HashSet<usize> = a.difference(&b).copied().collect();

        prop_assert_eq!(
            ba.union(&bb).iter_ones().collect::<HashSet<_>>(), union);
        prop_assert_eq!(
            ba.intersection(&bb).iter_ones().collect::<HashSet<_>>(), inter);
        prop_assert_eq!(
            ba.difference(&bb).iter_ones().collect::<HashSet<_>>(), diff);
        prop_assert_eq!(ba.is_subset_of(&bb), a.is_subset(&b));
        prop_assert_eq!(ba.is_disjoint(&bb), a.is_disjoint(&b));
    }

    /// The fused supergraph-hit filter equals its definitional expansion:
    /// cs ∩ (¬valid ∪ answer).
    #[test]
    fn retain_super_hit_matches_definition(
        cs in prop::collection::hash_set(0usize..128, 0..64),
        valid in prop::collection::hash_set(0usize..128, 0..64),
        answer in prop::collection::hash_set(0usize..128, 0..64),
    ) {
        let mut got = BitSet::from_indices(cs.iter().copied());
        got.retain_super_hit(
            &BitSet::from_indices(valid.iter().copied()),
            &BitSet::from_indices(answer.iter().copied()),
        );
        let expected: HashSet<usize> = cs
            .iter()
            .copied()
            .filter(|g| !valid.contains(g) || answer.contains(g))
            .collect();
        prop_assert_eq!(got.iter_ones().collect::<HashSet<_>>(), expected);
    }
}

/// A simple reference model of an undirected simple graph.
#[derive(Debug, Default)]
struct EdgeModel {
    edges: HashSet<(u32, u32)>,
}

impl EdgeModel {
    fn key(u: u32, v: u32) -> (u32, u32) {
        (u.min(v), u.max(v))
    }
    fn insert(&mut self, u: u32, v: u32) -> bool {
        self.edges.insert(Self::key(u, v))
    }
    fn remove(&mut self, u: u32, v: u32) -> bool {
        self.edges.remove(&Self::key(u, v))
    }
    fn contains(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&Self::key(u, v))
    }
}

#[derive(Debug, Clone)]
enum EdgeOp {
    Add(u32, u32),
    Remove(u32, u32),
}

fn edgeop(n: u32) -> impl Strategy<Value = EdgeOp> {
    prop_oneof![
        (0..n, 0..n).prop_map(|(u, v)| EdgeOp::Add(u, v)),
        (0..n, 0..n).prop_map(|(u, v)| EdgeOp::Remove(u, v)),
    ]
}

proptest! {
    /// Edge mutation (the UA/UR dataset updates) agrees with a HashSet edge
    /// model: success/failure of each op and the final edge set both match.
    #[test]
    fn graph_mutation_matches_model(ops in prop::collection::vec(edgeop(12), 0..100)) {
        let n = 12u32;
        let mut g = LabeledGraph::new();
        for i in 0..n {
            g.add_vertex((i % 3) as u16);
        }
        let mut model = EdgeModel::default();
        for op in ops {
            match op {
                EdgeOp::Add(u, v) => {
                    let ok = g.add_edge(u, v).is_ok();
                    let expected = u != v && !model.contains(u, v);
                    prop_assert_eq!(ok, expected);
                    if expected {
                        model.insert(u, v);
                    }
                }
                EdgeOp::Remove(u, v) => {
                    let ok = g.remove_edge(u, v).is_ok();
                    let expected = u != v && model.contains(u, v);
                    prop_assert_eq!(ok, expected);
                    if expected {
                        model.remove(u, v);
                    }
                }
            }
        }
        prop_assert_eq!(g.edge_count(), model.edges.len());
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    prop_assert_eq!(g.has_edge(u, v), model.contains(u, v));
                }
            }
        }
        // adjacency stays sorted & mirrored
        for u in 0..n {
            let ns = g.neighbors(u);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &v in ns {
                prop_assert!(g.neighbors(v).contains(&u));
            }
        }
    }

    /// CSR view ⟷ builder equivalence under random UA/UR sequences: the
    /// in-place CSR splicing path and the batch GraphBuilder path reach
    /// identical graphs, rows stay sorted and mirrored, `has_edge` is
    /// symmetric, and the cached degree/max-degree/signature values match
    /// a naive from-scratch recomputation.
    #[test]
    fn csr_matches_builder_and_caches_stay_consistent(
        ops in prop::collection::vec(edgeop(10), 0..120),
    ) {
        let n = 10u32;
        // CSR path: apply UA/UR directly to the frozen representation
        let mut csr = LabeledGraph::new();
        for i in 0..n {
            csr.add_vertex((i % 4) as u16);
        }
        // record the ops that succeeded to replay through the builder
        let mut applied: Vec<(bool, u32, u32)> = Vec::new();
        for op in ops {
            match op {
                EdgeOp::Add(u, v) => {
                    if csr.add_edge(u, v).is_ok() {
                        applied.push((true, u, v));
                    }
                }
                EdgeOp::Remove(u, v) => {
                    if csr.remove_edge(u, v).is_ok() {
                        applied.push((false, u, v));
                    }
                }
            }

            // invariants hold after EVERY mutation, not just at the end
            for u in 0..n {
                let row = csr.neighbors(u);
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row sorted");
                prop_assert_eq!(row.len(), csr.degree(u), "degree = row length");
                for &v in row {
                    prop_assert!(csr.has_edge(u, v) && csr.has_edge(v, u), "symmetry");
                    prop_assert!(csr.neighbors(v).contains(&u), "mirror");
                }
            }
            // cached signature vs naive recomputation
            let sig = csr.signature();
            prop_assert_eq!(sig.vertices as usize, csr.vertex_count());
            prop_assert_eq!(sig.edges as usize, csr.edge_count());
            let naive_max = (0..n).map(|v| csr.neighbors(v).len()).max().unwrap_or(0);
            prop_assert_eq!(sig.max_degree as usize, naive_max, "max-degree cache");
            let mut naive_hist: Vec<(u16, u32)> = Vec::new();
            for &l in csr.labels() {
                match naive_hist.iter_mut().find(|(hl, _)| *hl == l) {
                    Some((_, c)) => *c += 1,
                    None => naive_hist.push((l, 1)),
                }
            }
            naive_hist.sort_unstable();
            prop_assert_eq!(&sig.labels, &naive_hist, "label-histogram cache");
        }

        // builder path: replay the surviving edge set in one batch
        let mut b = GraphBuilder::with_capacity(n as usize);
        for i in 0..n {
            b.add_vertex((i % 4) as u16);
        }
        let mut survivors: HashSet<(u32, u32)> = HashSet::new();
        for (add, u, v) in applied {
            let key = (u.min(v), u.max(v));
            if add {
                survivors.insert(key);
            } else {
                survivors.remove(&key);
            }
        }
        for &(u, v) in &survivors {
            b.add_edge(u, v).expect("survivor edges are distinct");
        }
        let built = b.build();
        prop_assert_eq!(&built, &csr, "builder and CSR-splice paths agree");
        prop_assert_eq!(built.signature(), csr.signature());
    }

    /// Text IO round-trips arbitrary generated graphs.
    #[test]
    fn io_roundtrip(seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..30usize);
        let extra = if n >= 4 { rng.random_range(0..n) } else { 0 };
        let g = gc_graph::generate::random_connected_graph(
            &mut rng, n, extra, |r| r.random_range(0..10u16));
        let text = gc_graph::io::write_graph(&g, 7);
        let parsed = gc_graph::io::parse_graph(&text).unwrap();
        prop_assert_eq!(parsed, g);
    }
}
