//! The labeled undirected graph type used throughout GC+ — CSR edition.
//!
//! Per §3 of the paper: a labeled graph `G = (V, E, l)` has vertices `V`,
//! undirected edges `E ⊆ V × V`, and a labeling `l : V → U` over a label
//! alphabet `U`. Only vertices carry labels. The dataset update operations
//! UA (edge addition) and UR (edge removal) mutate a graph's edge set in
//! place.
//!
//! ### Storage layout
//!
//! The hot read path of every subgraph-isomorphism consumer (VF2/VF2+/GQL
//! feasibility checks, GQL profile construction, the §6 pruner's quick
//! filters) is `neighbors(v)` / `has_edge(u, v)` / `degree(v)`. Those reads
//! used to walk a `Vec<Vec<VertexId>>` — one heap allocation per vertex,
//! pointer-chasing on every neighbor expansion. [`LabeledGraph`] now keeps
//! a **compressed sparse row** (CSR) layout instead:
//!
//! * `neighbors: Vec<VertexId>` — all adjacency rows concatenated, each row
//!   sorted ascending;
//! * `offsets: Vec<u32>` — `offsets[v]..offsets[v+1]` delimits `v`'s row,
//!   so `degree(v)` is one subtraction and `neighbors(v)` one contiguous
//!   slice;
//! * a cached [`GraphSignature`] — vertex/edge counts, maximum degree and
//!   the label-frequency histogram — maintained incrementally so the
//!   O(1) signature pre-filters in `gc-subiso` never recompute it.
//!
//! Mutation strategy: batch construction goes through [`GraphBuilder`]
//! (per-row `Vec`s with amortized O(deg) sorted inserts, frozen into CSR in
//! one pass by [`GraphBuilder::build`]); the UA/UR single-edge updates edit
//! the CSR arrays directly by splicing the flat `neighbors` vector and
//! shifting `offsets`. For the paper's graph sizes (AIDS molecules: ≤ 245
//! vertices, ≤ 250 edges) one splice is a sub-microsecond `memmove` —
//! cheaper than keeping a second mutable adjacency form in sync — while
//! every read between updates stays flat and cache-friendly.

/// Vertex identifier inside a single graph (dense, `0..vertex_count`).
pub type VertexId = u32;

/// Vertex label. The AIDS alphabet has 62 symbols; `u16` is plenty.
pub type Label = u16;

/// Errors raised by graph mutation.
///
/// The paper's change-plan generator guarantees UA adds a non-existent edge
/// and UR removes an existing one; these errors surface any violation of
/// that contract instead of silently corrupting the dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was `>= vertex_count`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count at the time of the call.
        count: usize,
    },
    /// Self loops are not representable in the paper's simple-graph model.
    SelfLoop(VertexId),
    /// UA attempted on an edge that already exists.
    EdgeExists(VertexId, VertexId),
    /// UR attempted on an edge that does not exist.
    EdgeMissing(VertexId, VertexId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, count } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {count} vertices)"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v} not allowed"),
            GraphError::EdgeExists(u, v) => write!(f, "edge ({u},{v}) already exists"),
            GraphError::EdgeMissing(u, v) => write!(f, "edge ({u},{v}) does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An order-invariant structural summary of a graph, cached on every
/// [`LabeledGraph`] and kept in sync across mutations.
///
/// Isomorphic graphs always share a signature, and `pattern ⊆ target`
/// (non-induced, label-preserving) requires
/// [`target.signature().dominates(pattern.signature())`](GraphSignature::dominates)
/// — the O(1)-per-field necessary condition Method M's pre-filter stage
/// checks before running any matcher.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphSignature {
    /// `|V|`.
    pub vertices: u32,
    /// `|E|`.
    pub edges: u32,
    /// Maximum vertex degree (0 for the empty graph).
    pub max_degree: u32,
    /// Label histogram as `(label, count)`, sorted by label.
    pub labels: Vec<(Label, u32)>,
}

impl GraphSignature {
    fn empty() -> Self {
        GraphSignature {
            vertices: 0,
            edges: 0,
            max_degree: 0,
            labels: Vec::new(),
        }
    }

    fn add_label(&mut self, label: Label) {
        match self.labels.binary_search_by_key(&label, |&(l, _)| l) {
            Ok(i) => self.labels[i].1 += 1,
            Err(i) => self.labels.insert(i, (label, 1)),
        }
    }

    /// `true` iff every `(label, count)` of `other` is covered by `self`
    /// (multiset domination).
    pub fn labels_dominate(&self, other: &GraphSignature) -> bool {
        hist_dominates(&self.labels, &other.labels)
    }

    /// Necessary condition for `other ⊆ self` (non-induced containment):
    /// `self` has at least as many vertices, edges, per-label occurrences,
    /// and at least `other`'s maximum degree. Every check is O(1) except
    /// the label sweep, which is O(distinct labels of `other`).
    pub fn dominates(&self, other: &GraphSignature) -> bool {
        self.vertices >= other.vertices
            && self.edges >= other.edges
            && self.max_degree >= other.max_degree
            && self.labels_dominate(other)
    }
}

/// `true` iff histogram `big` dominates `small` (both sorted by label).
fn hist_dominates(big: &[(Label, u32)], small: &[(Label, u32)]) -> bool {
    let mut bi = 0;
    for &(l, c) in small {
        while bi < big.len() && big[bi].0 < l {
            bi += 1;
        }
        if bi >= big.len() || big[bi].0 != l || big[bi].1 < c {
            return false;
        }
    }
    true
}

/// Amortized construction form of [`LabeledGraph`].
///
/// Rows are per-vertex `Vec`s (amortized O(deg) sorted insert per edge);
/// [`build`](GraphBuilder::build) freezes them into the flat CSR layout in
/// one pass. All graph generators and `from_parts` construct through this
/// type, so bulk construction never pays the CSR splice cost.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    adj: Vec<Vec<VertexId>>,
    edge_count: usize,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with room for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(n),
            adj: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Number of vertices so far.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges so far.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The label of vertex `v`. Panics if out of range.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Sorted neighbor row of `v`. Panics if out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`. Panics if out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// `true` iff the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self.adj.get(u as usize) {
            Some(row) => row.binary_search(&v).is_ok(),
            None => false,
        }
    }

    /// Adds a vertex with the given label, returning its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        self.labels.push(label);
        self.adj.push(Vec::new());
        (self.labels.len() - 1) as VertexId
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.labels.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                count: self.labels.len(),
            })
        }
    }

    /// Adds the undirected edge `(u, v)`; rejects duplicates and self loops
    /// with the same contract as [`LabeledGraph::add_edge`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let pos_u = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return Err(GraphError::EdgeExists(u, v)),
            Err(p) => p,
        };
        let pos_v = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("adjacency mirror invariant violated");
        self.adj[u as usize].insert(pos_u, v);
        self.adj[v as usize].insert(pos_v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Freezes the builder into the CSR representation, computing the
    /// cached signature in the same pass.
    pub fn build(self) -> LabeledGraph {
        let n = self.labels.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        let mut sig = GraphSignature::empty();
        sig.vertices = n as u32;
        sig.edges = self.edge_count as u32;
        offsets.push(0u32);
        for (v, row) in self.adj.into_iter().enumerate() {
            sig.max_degree = sig.max_degree.max(row.len() as u32);
            sig.add_label(self.labels[v]);
            neighbors.extend_from_slice(&row);
            offsets.push(neighbors.len() as u32);
        }
        LabeledGraph {
            labels: self.labels,
            offsets,
            neighbors,
            edge_count: self.edge_count,
            sig,
        }
    }
}

/// An undirected graph with vertex labels, stored in CSR form.
///
/// Invariants:
/// * `offsets.len() == vertex_count() + 1`, `offsets[0] == 0`,
///   non-decreasing, `offsets[n] == neighbors.len() == 2 · edge_count`;
/// * each row `neighbors[offsets[v]..offsets[v+1]]` is sorted ascending and
///   mirrors its counterpart (`v ∈ row(u) ⟺ u ∈ row(v)`);
/// * no self loops, no parallel edges;
/// * `sig` equals the signature recomputed from scratch (so derived
///   equality remains structural equality).
#[derive(Clone, PartialEq, Eq)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    offsets: Vec<u32>,
    neighbors: Vec<VertexId>,
    edge_count: usize,
    sig: GraphSignature,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        LabeledGraph {
            labels: Vec::new(),
            offsets: vec![0],
            neighbors: Vec::new(),
            edge_count: 0,
            sig: GraphSignature::empty(),
        }
    }

    /// Creates an empty graph with capacity for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        LabeledGraph {
            labels: Vec::with_capacity(n),
            offsets,
            neighbors: Vec::new(),
            edge_count: 0,
            sig: GraphSignature::empty(),
        }
    }

    /// Builds a graph from a label list and an edge list.
    ///
    /// Convenience for tests and examples; duplicate edges and self loops
    /// are rejected like the incremental API. Construction runs through
    /// [`GraphBuilder`], paying the CSR freeze exactly once.
    pub fn from_parts(
        labels: Vec<Label>,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::with_capacity(labels.len());
        for l in labels {
            b.add_vertex(l);
        }
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `true` iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The cached structural signature (counts, max degree, label
    /// histogram). O(1); refreshed incrementally by every mutation.
    #[inline]
    pub fn signature(&self) -> &GraphSignature {
        &self.sig
    }

    /// Adds a vertex with the given label, returning its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        self.labels.push(label);
        let end = *self.offsets.last().expect("offsets never empty");
        self.offsets.push(end);
        self.sig.vertices += 1;
        self.sig.add_label(label);
        (self.labels.len() - 1) as VertexId
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.labels.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                count: self.labels.len(),
            })
        }
    }

    #[inline]
    fn row_bounds(&self, v: VertexId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }

    /// Inserts `value` into `row`'s slot of the flat array, keeping the row
    /// sorted, and shifts the offsets of all later rows.
    fn splice_in(&mut self, row: VertexId, value: VertexId) -> Result<(), GraphError> {
        let (start, end) = self.row_bounds(row);
        let pos = match self.neighbors[start..end].binary_search(&value) {
            Ok(_) => return Err(GraphError::EdgeExists(row, value)),
            Err(p) => p,
        };
        self.neighbors.insert(start + pos, value);
        for o in &mut self.offsets[row as usize + 1..] {
            *o += 1;
        }
        Ok(())
    }

    /// Removes `value` from `row`'s slot and shifts later offsets down.
    fn splice_out(&mut self, row: VertexId, value: VertexId) -> Result<(), GraphError> {
        let (start, end) = self.row_bounds(row);
        let pos = match self.neighbors[start..end].binary_search(&value) {
            Ok(p) => p,
            Err(_) => return Err(GraphError::EdgeMissing(row, value)),
        };
        self.neighbors.remove(start + pos);
        for o in &mut self.offsets[row as usize + 1..] {
            *o -= 1;
        }
        Ok(())
    }

    /// Adds the undirected edge `(u, v)` — the paper's **UA** update.
    ///
    /// Splices both CSR rows in place (O(|E|) worst case — a short
    /// `memmove` at this workload's graph sizes) and refreshes the cached
    /// signature incrementally.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.splice_in(u, v)?;
        self.splice_in(v, u)
            .expect("adjacency mirror invariant violated");
        self.edge_count += 1;
        self.sig.edges += 1;
        let du = self.degree(u) as u32;
        let dv = self.degree(v) as u32;
        self.sig.max_degree = self.sig.max_degree.max(du).max(dv);
        Ok(())
    }

    /// Removes the undirected edge `(u, v)` — the paper's **UR** update.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let du = self.degree(u) as u32;
        let dv = self.degree(v) as u32;
        self.splice_out(u, v)?;
        self.splice_out(v, u)
            .expect("adjacency mirror invariant violated");
        self.edge_count -= 1;
        self.sig.edges -= 1;
        if du == self.sig.max_degree || dv == self.sig.max_degree {
            // the maximum may have dropped: recompute from the offsets
            self.sig.max_degree = (0..self.vertex_count())
                .map(|w| self.offsets[w + 1] - self.offsets[w])
                .max()
                .unwrap_or(0);
        }
        Ok(())
    }

    /// `true` iff the undirected edge `(u, v)` exists. Binary search over
    /// the smaller of the two CSR rows.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let n = self.labels.len();
        if (u as usize) >= n || (v as usize) >= n {
            return false;
        }
        // searching the shorter row halves the expected probe count on
        // skewed degree distributions
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors_unchecked(a).binary_search(&b).is_ok()
    }

    /// The label of vertex `v`. Panics if out of range.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    #[inline]
    fn neighbors_unchecked(&self, v: VertexId) -> &[VertexId] {
        let (start, end) = self.row_bounds(v);
        &self.neighbors[start..end]
    }

    /// Sorted neighbor list of `v` — one contiguous CSR slice. Panics if
    /// out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        assert!(
            (v as usize) < self.labels.len(),
            "vertex {v} out of range (graph has {} vertices)",
            self.labels.len()
        );
        self.neighbors_unchecked(v)
    }

    /// Degree of `v` — one offset subtraction. Panics if out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum degree over all vertices (0 for the empty graph). O(1) —
    /// served from the cached signature.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.sig.max_degree as usize
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.labels.len() as VertexId
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.labels.len() as VertexId).flat_map(move |u| {
            self.neighbors_unchecked(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Histogram of label occurrences, as `(label, count)` sorted by label.
    /// Served from the cached signature.
    pub fn label_histogram(&self) -> Vec<(Label, u32)> {
        self.sig.labels.clone()
    }

    /// `true` iff `self`'s label multiset is dominated by `other`'s
    /// (necessary condition for `self ⊆ other`). O(distinct labels) over
    /// the cached histograms.
    pub fn labels_dominated_by(&self, other: &LabeledGraph) -> bool {
        other.sig.labels_dominate(&self.sig)
    }

    /// `true` iff the graph is connected (the empty graph counts as
    /// connected). Query graphs extracted by BFS/random walk are connected
    /// by construction; this is asserted in workload tests.
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors_unchecked(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// A cheap order-invariant fingerprint `(|V|, |E|, label histogram)`.
    ///
    /// Two isomorphic graphs always share a signature; the GC+ exact-match
    /// check uses signature equality as a filter before the two-way sub-iso
    /// test of §6.3. Kept for API compatibility — [`signature`](Self::signature)
    /// carries the same information plus the max degree, without cloning.
    pub fn size_signature(&self) -> (usize, usize, Vec<(Label, u32)>) {
        (self.vertex_count(), self.edge_count, self.label_histogram())
    }

    /// Degree sequence in descending order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.vertex_count())
            .map(|v| self.degree(v as VertexId))
            .collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }
}

impl Default for LabeledGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LabeledGraph(|V|={}, |E|={}, labels={:?}, edges={:?})",
            self.vertex_count(),
            self.edge_count,
            self.labels,
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> LabeledGraph {
        LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn build_and_query() {
        let g = path3();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.label(2), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn add_edge_rejects_duplicates_and_self_loops() {
        let mut g = path3();
        assert_eq!(g.add_edge(0, 1), Err(GraphError::EdgeExists(0, 1)));
        assert_eq!(g.add_edge(1, 0), Err(GraphError::EdgeExists(1, 0)));
        assert_eq!(g.add_edge(2, 2), Err(GraphError::SelfLoop(2)));
        assert_eq!(
            g.add_edge(0, 9),
            Err(GraphError::VertexOutOfRange {
                vertex: 9,
                count: 3
            })
        );
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remove_edge_is_ur() {
        let mut g = path3();
        g.remove_edge(1, 2).unwrap();
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.remove_edge(1, 2), Err(GraphError::EdgeMissing(1, 2)));
        // symmetric removal works too
        g.add_edge(2, 1).unwrap();
        g.remove_edge(2, 1).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_iterator_unique_ordered() {
        let g = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (2, 1), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn label_histogram_and_domination() {
        let g = LabeledGraph::from_parts(vec![5, 3, 5, 5], &[]).unwrap();
        assert_eq!(g.label_histogram(), vec![(3, 1), (5, 3)]);

        let small = LabeledGraph::from_parts(vec![5, 5], &[]).unwrap();
        let other = LabeledGraph::from_parts(vec![5, 3], &[]).unwrap();
        assert!(small.labels_dominated_by(&g));
        assert!(!g.labels_dominated_by(&small));
        assert!(other.labels_dominated_by(&g));
        assert!(!small.labels_dominated_by(&other));
    }

    #[test]
    fn connectivity() {
        assert!(LabeledGraph::new().is_connected());
        assert!(path3().is_connected());
        let disconnected = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1)]).unwrap();
        assert!(!disconnected.is_connected());
        let single = LabeledGraph::from_parts(vec![0], &[]).unwrap();
        assert!(single.is_connected());
    }

    #[test]
    fn signature_is_order_invariant() {
        let g1 = LabeledGraph::from_parts(vec![1, 2, 3], &[(0, 1), (1, 2)]).unwrap();
        let g2 = LabeledGraph::from_parts(vec![3, 2, 1], &[(2, 1), (1, 0)]).unwrap();
        assert_eq!(g1.size_signature(), g2.size_signature());
        assert_eq!(g1.signature(), g2.signature());
    }

    #[test]
    fn degree_sequence_descending() {
        let g = LabeledGraph::from_parts(vec![0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        assert_eq!(g.degree_sequence(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn ua_then_ur_roundtrips() {
        let mut g = path3();
        let before = g.clone();
        g.add_edge(0, 2).unwrap();
        assert_ne!(g, before);
        g.remove_edge(0, 2).unwrap();
        assert_eq!(g, before);
    }

    #[test]
    fn signature_tracks_mutations() {
        let mut g = LabeledGraph::new();
        assert_eq!(g.signature(), &GraphSignature::empty());
        g.add_vertex(4);
        g.add_vertex(4);
        g.add_vertex(1);
        assert_eq!(g.signature().labels, vec![(1, 1), (4, 2)]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.signature().edges, 2);
        assert_eq!(g.signature().max_degree, 2);
        g.remove_edge(1, 2).unwrap();
        assert_eq!(g.signature().edges, 1);
        assert_eq!(g.signature().max_degree, 1, "max degree recomputed on UR");
        // signature equals a from-scratch rebuild
        let rebuilt =
            LabeledGraph::from_parts(g.labels().to_vec(), &g.edges().collect::<Vec<_>>()).unwrap();
        assert_eq!(g.signature(), rebuilt.signature());
    }

    #[test]
    fn signature_domination_is_a_containment_necessary_condition() {
        let tri = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let p2 = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
        let star = LabeledGraph::from_parts(vec![0; 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let path4 = LabeledGraph::from_parts(vec![0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(tri.signature().dominates(p2.signature()));
        assert!(!p2.signature().dominates(tri.signature()));
        // max-degree check: K1,3 cannot embed in P4 despite equal sizes
        assert!(!path4.signature().dominates(star.signature()));
        // necessary, not sufficient: the star's signature dominates the
        // path's even though P4 ⊄ K1,3 — the matcher still decides
        assert!(star.signature().dominates(path4.signature()));
        // reflexivity
        assert!(tri.signature().dominates(tri.signature()));
    }

    #[test]
    fn builder_matches_incremental_construction() {
        let mut b = GraphBuilder::with_capacity(4);
        for l in [7u16, 7, 2, 9] {
            b.add_vertex(l);
        }
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 1).unwrap();
        assert_eq!(b.vertex_count(), 4);
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.degree(1), 2);
        assert!(b.has_edge(1, 0) && !b.has_edge(0, 2));
        assert_eq!(b.neighbors(1), &[0, 2]);
        assert_eq!(b.label(3), 9);
        assert_eq!(b.add_edge(0, 1), Err(GraphError::EdgeExists(0, 1)));
        assert_eq!(b.add_edge(3, 3), Err(GraphError::SelfLoop(3)));
        let built = b.build();

        let mut inc = LabeledGraph::new();
        for l in [7u16, 7, 2, 9] {
            inc.add_vertex(l);
        }
        inc.add_edge(0, 1).unwrap();
        inc.add_edge(2, 1).unwrap();
        assert_eq!(built, inc);
        assert_eq!(built.signature(), inc.signature());
    }
}
