//! The labeled undirected graph type used throughout GC+.
//!
//! Per §3 of the paper: a labeled graph `G = (V, E, l)` has vertices `V`,
//! undirected edges `E ⊆ V × V`, and a labeling `l : V → U` over a label
//! alphabet `U`. Only vertices carry labels. The dataset update operations
//! UA (edge addition) and UR (edge removal) mutate a graph's edge set in
//! place, so the type supports cheap edge insertion/removal while keeping
//! adjacency lists sorted for binary-search `has_edge` (the hot operation of
//! every subgraph-isomorphism consistency check).

/// Vertex identifier inside a single graph (dense, `0..vertex_count`).
pub type VertexId = u32;

/// Vertex label. The AIDS alphabet has 62 symbols; `u16` is plenty.
pub type Label = u16;

/// Errors raised by graph mutation.
///
/// The paper's change-plan generator guarantees UA adds a non-existent edge
/// and UR removes an existing one; these errors surface any violation of
/// that contract instead of silently corrupting the dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was `>= vertex_count`.
    VertexOutOfRange { vertex: VertexId, count: usize },
    /// Self loops are not representable in the paper's simple-graph model.
    SelfLoop(VertexId),
    /// UA attempted on an edge that already exists.
    EdgeExists(VertexId, VertexId),
    /// UR attempted on an edge that does not exist.
    EdgeMissing(VertexId, VertexId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, count } => {
                write!(f, "vertex {vertex} out of range (graph has {count} vertices)")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v} not allowed"),
            GraphError::EdgeExists(u, v) => write!(f, "edge ({u},{v}) already exists"),
            GraphError::EdgeMissing(u, v) => write!(f, "edge ({u},{v}) does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected graph with vertex labels.
///
/// Invariants:
/// * adjacency lists are sorted ascending and mirror each other
///   (`v ∈ adj[u] ⟺ u ∈ adj[v]`),
/// * no self loops, no parallel edges,
/// * `labels.len() == adj.len() == vertex_count()`.
#[derive(Clone, PartialEq, Eq)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    adj: Vec<Vec<VertexId>>,
    edge_count: usize,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            labels: Vec::new(),
            adj: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with capacity for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            labels: Vec::with_capacity(n),
            adj: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Builds a graph from a label list and an edge list.
    ///
    /// Convenience for tests and examples; duplicate edges and self loops
    /// are rejected like the incremental API.
    pub fn from_parts(
        labels: Vec<Label>,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        let mut g = Self {
            adj: vec![Vec::new(); labels.len()],
            labels,
            edge_count: 0,
        };
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `true` iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds a vertex with the given label, returning its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        self.labels.push(label);
        self.adj.push(Vec::new());
        (self.labels.len() - 1) as VertexId
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.labels.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                count: self.labels.len(),
            })
        }
    }

    /// Adds the undirected edge `(u, v)` — the paper's **UA** update.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let pos_u = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return Err(GraphError::EdgeExists(u, v)),
            Err(p) => p,
        };
        let pos_v = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("adjacency mirror invariant violated");
        self.adj[u as usize].insert(pos_u, v);
        self.adj[v as usize].insert(pos_v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the undirected edge `(u, v)` — the paper's **UR** update.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let pos_u = match self.adj[u as usize].binary_search(&v) {
            Ok(p) => p,
            Err(_) => return Err(GraphError::EdgeMissing(u, v)),
        };
        let pos_v = self.adj[v as usize]
            .binary_search(&u)
            .expect("adjacency mirror invariant violated");
        self.adj[u as usize].remove(pos_u);
        self.adj[v as usize].remove(pos_v);
        self.edge_count -= 1;
        Ok(())
    }

    /// `true` iff the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self.adj.get(u as usize) {
            Some(n) => n.binary_search(&v).is_ok(),
            None => false,
        }
    }

    /// The label of vertex `v`. Panics if out of range.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Sorted neighbor list of `v`. Panics if out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`. Panics if out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.labels.len() as VertexId
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            let u = u as VertexId;
            ns.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Histogram of label occurrences, as `(label, count)` sorted by label.
    ///
    /// Used by the quick filters before any sub-iso test: a pattern can only
    /// be contained in a target whose label multiset dominates the
    /// pattern's.
    pub fn label_histogram(&self) -> Vec<(Label, u32)> {
        let mut sorted: Vec<Label> = self.labels.clone();
        sorted.sort_unstable();
        let mut hist: Vec<(Label, u32)> = Vec::new();
        for l in sorted {
            match hist.last_mut() {
                Some((last, c)) if *last == l => *c += 1,
                _ => hist.push((l, 1)),
            }
        }
        hist
    }

    /// `true` iff `self`'s label multiset is dominated by `other`'s
    /// (necessary condition for `self ⊆ other`).
    pub fn labels_dominated_by(&self, other: &LabeledGraph) -> bool {
        let a = self.label_histogram();
        let b = other.label_histogram();
        let mut bi = 0;
        for (l, c) in a {
            while bi < b.len() && b[bi].0 < l {
                bi += 1;
            }
            if bi >= b.len() || b[bi].0 != l || b[bi].1 < c {
                return false;
            }
        }
        true
    }

    /// `true` iff the graph is connected (the empty graph counts as
    /// connected). Query graphs extracted by BFS/random walk are connected
    /// by construction; this is asserted in workload tests.
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// A cheap order-invariant fingerprint `(|V|, |E|, label histogram)`.
    ///
    /// Two isomorphic graphs always share a signature; the GC+ exact-match
    /// check uses signature equality as a filter before the two-way sub-iso
    /// test of §6.3.
    pub fn size_signature(&self) -> (usize, usize, Vec<(Label, u32)>) {
        (self.vertex_count(), self.edge_count, self.label_histogram())
    }

    /// Degree sequence in descending order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }
}

impl Default for LabeledGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LabeledGraph(|V|={}, |E|={}, labels={:?}, edges={:?})",
            self.vertex_count(),
            self.edge_count,
            self.labels,
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> LabeledGraph {
        LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn build_and_query() {
        let g = path3();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.label(2), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn add_edge_rejects_duplicates_and_self_loops() {
        let mut g = path3();
        assert_eq!(g.add_edge(0, 1), Err(GraphError::EdgeExists(0, 1)));
        assert_eq!(g.add_edge(1, 0), Err(GraphError::EdgeExists(1, 0)));
        assert_eq!(g.add_edge(2, 2), Err(GraphError::SelfLoop(2)));
        assert_eq!(
            g.add_edge(0, 9),
            Err(GraphError::VertexOutOfRange { vertex: 9, count: 3 })
        );
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remove_edge_is_ur() {
        let mut g = path3();
        g.remove_edge(1, 2).unwrap();
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.remove_edge(1, 2), Err(GraphError::EdgeMissing(1, 2)));
        // symmetric removal works too
        g.add_edge(2, 1).unwrap();
        g.remove_edge(2, 1).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_iterator_unique_ordered() {
        let g = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (2, 1), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn label_histogram_and_domination() {
        let g = LabeledGraph::from_parts(vec![5, 3, 5, 5], &[]).unwrap();
        assert_eq!(g.label_histogram(), vec![(3, 1), (5, 3)]);

        let small = LabeledGraph::from_parts(vec![5, 5], &[]).unwrap();
        let other = LabeledGraph::from_parts(vec![5, 3], &[]).unwrap();
        assert!(small.labels_dominated_by(&g));
        assert!(!g.labels_dominated_by(&small));
        assert!(other.labels_dominated_by(&g));
        assert!(!small.labels_dominated_by(&other));
    }

    #[test]
    fn connectivity() {
        assert!(LabeledGraph::new().is_connected());
        assert!(path3().is_connected());
        let disconnected = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1)]).unwrap();
        assert!(!disconnected.is_connected());
        let single = LabeledGraph::from_parts(vec![0], &[]).unwrap();
        assert!(single.is_connected());
    }

    #[test]
    fn signature_is_order_invariant() {
        let g1 = LabeledGraph::from_parts(vec![1, 2, 3], &[(0, 1), (1, 2)]).unwrap();
        let g2 = LabeledGraph::from_parts(vec![3, 2, 1], &[(2, 1), (1, 0)]).unwrap();
        assert_eq!(g1.size_signature(), g2.size_signature());
    }

    #[test]
    fn degree_sequence_descending() {
        let g = LabeledGraph::from_parts(vec![0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        assert_eq!(g.degree_sequence(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn ua_then_ur_roundtrips() {
        let mut g = path3();
        let before = g.clone();
        g.add_edge(0, 2).unwrap();
        assert_ne!(g, before);
        g.remove_edge(0, 2).unwrap();
        assert_eq!(g, before);
    }
}
