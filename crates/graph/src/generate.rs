//! Random graph construction and query extraction.
//!
//! Two families of primitives live here:
//!
//! * **dataset-side generators** — [`random_connected_graph`] and
//!   [`molecule_like`] build the synthetic graphs that substitute for the
//!   AIDS antiviral screen dataset (see DESIGN.md §3 for the substitution
//!   rationale);
//! * **query-side extractors** — [`bfs_extract`] implements the paper's
//!   Type A extraction ("a BFS is performed starting from the selected
//!   node; for each new node, all its edges connecting it to already
//!   visited nodes are added to the generated query, until the desired
//!   query size is reached") and [`random_walk_extract`] implements the
//!   Type B extraction ("performing a random walk till the required query
//!   graph size is reached"). Both return connected subgraphs of the source
//!   graph with vertex labels preserved, so every extracted query has at
//!   least one embedding in its source graph.
//!
//! All construction goes through [`GraphBuilder`] (amortized per-row
//! inserts) and freezes into the CSR [`LabeledGraph`] exactly once per
//! generated graph.

use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;

use crate::graph::{GraphBuilder, Label, LabeledGraph, VertexId};

/// Builds a connected random graph: a random spanning tree over `n`
/// vertices plus `extra_edges` additional distinct random edges. Labels are
/// drawn by `label_of` (vertex index ↦ label), letting callers plug any
/// label distribution.
///
/// `extra_edges` is clamped to the number of free (non-tree) edge slots, so
/// requesting a dense graph on few vertices silently yields the complete
/// graph.
pub fn random_connected_graph<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    extra_edges: usize,
    mut label_of: impl FnMut(&mut R) -> Label,
) -> LabeledGraph {
    let mut g = GraphBuilder::with_capacity(n);
    for _ in 0..n {
        let l = label_of(rng);
        g.add_vertex(l);
    }
    if n <= 1 {
        return g.build();
    }
    // Random spanning tree: attach vertex i to a uniformly random earlier one.
    for i in 1..n {
        let j = rng.random_range(0..i);
        g.add_edge(i as VertexId, j as VertexId)
            .expect("tree edge cannot duplicate");
    }
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra_edges = extra_edges.min(max_extra);
    let mut added = 0;
    while added < extra_edges {
        let u = rng.random_range(0..n) as VertexId;
        let v = rng.random_range(0..n) as VertexId;
        if u != v && g.add_edge(u, v).is_ok() {
            added += 1;
        }
    }
    g.build()
}

/// Builds a molecule-like sparse graph: a spanning tree grown with a
/// degree cap (atoms have bounded valence) plus `rings` ring-closing edges
/// between near-by tree vertices. This is the per-graph builder used by the
/// synthetic AIDS substitute; the resulting graphs are connected, sparse
/// (`|E| = n - 1 + rings`) and have small max degree, like the NCI
/// molecules.
pub fn molecule_like<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    rings: usize,
    max_degree: usize,
    mut label_of: impl FnMut(&mut R) -> Label,
) -> LabeledGraph {
    assert!(max_degree >= 2, "molecules need max_degree >= 2");
    let mut g = GraphBuilder::with_capacity(n);
    for _ in 0..n {
        let l = label_of(rng);
        g.add_vertex(l);
    }
    if n <= 1 {
        return g.build();
    }
    // Grow a tree attaching each new vertex to a random earlier vertex with
    // spare valence; fall back to a uniformly random earlier vertex if the
    // sampled one is saturated (keeps generation O(n) in expectation).
    for i in 1..n {
        let mut j = rng.random_range(0..i);
        let mut tries = 0;
        while g.degree(j as VertexId) >= max_degree && tries < 16 {
            j = rng.random_range(0..i);
            tries += 1;
        }
        g.add_edge(i as VertexId, j as VertexId)
            .expect("tree edge cannot duplicate");
    }
    // Ring closures: connect vertices at short tree distance (prefer
    // 5/6-cycles like organic rings). Best effort — give up after a bounded
    // number of attempts so pathological degree caps cannot loop forever.
    let mut added = 0;
    let mut attempts = 0;
    while added < rings && attempts < rings * 64 + 64 {
        attempts += 1;
        let u = rng.random_range(0..n) as VertexId;
        if g.degree(u) >= max_degree {
            continue;
        }
        // walk 4-5 hops away from u
        let hops = rng.random_range(4..=5);
        let mut cur = u;
        let mut prev = u;
        for _ in 0..hops {
            let ns = g.neighbors(cur);
            if ns.is_empty() {
                break;
            }
            let cand: Vec<VertexId> = ns.iter().copied().filter(|&x| x != prev).collect();
            let next = if cand.is_empty() {
                ns[0]
            } else {
                *cand.choose(rng).expect("nonempty")
            };
            prev = cur;
            cur = next;
        }
        if cur != u && !g.has_edge(u, cur) && g.degree(cur) < max_degree {
            g.add_edge(u, cur).expect("checked for duplicates");
            added += 1;
        }
    }
    g.build()
}

/// Type A query extraction (paper §7.1): BFS from `start`, adding — for
/// each newly visited vertex — its edges towards already-visited vertices
/// one at a time, stopping exactly at `target_edges` edges.
///
/// Returns `None` if `start`'s connected component cannot supply
/// `target_edges` edges. The returned graph has fresh dense vertex ids and
/// preserves labels, so it is subgraph-isomorphic to `source` by
/// construction.
pub fn bfs_extract<R: Rng + ?Sized>(
    rng: &mut R,
    source: &LabeledGraph,
    start: VertexId,
    target_edges: usize,
) -> Option<LabeledGraph> {
    if target_edges == 0 || (start as usize) >= source.vertex_count() {
        return None;
    }
    let n = source.vertex_count();
    let mut visited = vec![false; n];
    let mut map = vec![u32::MAX; n]; // source id -> query id
    let mut query = GraphBuilder::new();
    let mut frontier = std::collections::VecDeque::new();

    visited[start as usize] = true;
    map[start as usize] = query.add_vertex(source.label(start));
    frontier.push_back(start);
    let mut edges = 0usize;

    while let Some(u) = frontier.pop_front() {
        // Randomize neighbor visiting order so repeated extraction from the
        // same start yields diverse queries.
        let mut ns: Vec<VertexId> = source.neighbors(u).to_vec();
        ns.shuffle(rng);
        for v in ns {
            if edges >= target_edges {
                return Some(query.build());
            }
            if !visited[v as usize] {
                visited[v as usize] = true;
                map[v as usize] = query.add_vertex(source.label(v));
                frontier.push_back(v);
                // add edges from v to every already-visited neighbor, one at
                // a time, stopping exactly at the target size
                for &w in source.neighbors(v) {
                    if visited[w as usize] && map[w as usize] != u32::MAX {
                        let qv = map[v as usize];
                        let qw = map[w as usize];
                        if !query.has_edge(qv, qw) {
                            query.add_edge(qv, qw).expect("deduplicated");
                            edges += 1;
                            if edges >= target_edges {
                                return Some(query.build());
                            }
                        }
                    }
                }
            }
        }
    }
    None // component exhausted before reaching the target size
}

/// Type B query extraction (paper §7.1): random walk from `start`,
/// collecting each traversed edge (deduplicated) until `target_edges`
/// distinct edges are collected.
///
/// Returns `None` if the walk gets stuck (isolated vertex) or the component
/// is too small; the caller retries with a different start.
pub fn random_walk_extract<R: Rng + ?Sized>(
    rng: &mut R,
    source: &LabeledGraph,
    start: VertexId,
    target_edges: usize,
) -> Option<LabeledGraph> {
    if target_edges == 0 || (start as usize) >= source.vertex_count() {
        return None;
    }
    let n = source.vertex_count();
    let mut map = vec![u32::MAX; n];
    let mut query = GraphBuilder::new();
    map[start as usize] = query.add_vertex(source.label(start));

    let mut cur = start;
    let mut edges = 0usize;
    // Bound the walk: an unlucky walk on a component with fewer than
    // target_edges edges would never terminate otherwise.
    let max_steps = (target_edges + 1) * 50;
    for _ in 0..max_steps {
        if edges >= target_edges {
            return Some(query.build());
        }
        let ns = source.neighbors(cur);
        if ns.is_empty() {
            return None;
        }
        let next = *ns.choose(rng).expect("nonempty");
        if map[next as usize] == u32::MAX {
            map[next as usize] = query.add_vertex(source.label(next));
        }
        let qu = map[cur as usize];
        let qv = map[next as usize];
        if !query.has_edge(qu, qv) {
            query.add_edge(qu, qv).expect("deduplicated");
            edges += 1;
        }
        cur = next;
    }
    if edges >= target_edges {
        Some(query.build())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_connected_graph_is_connected_with_exact_edges() {
        let mut r = rng(1);
        for n in [1usize, 2, 5, 20, 60] {
            let extra = if n >= 4 { 3 } else { 0 };
            let g = random_connected_graph(&mut r, n, extra, |r| r.random_range(0..5) as Label);
            assert_eq!(g.vertex_count(), n);
            if n >= 1 {
                assert!(g.is_connected(), "n={n}");
            }
            if n >= 2 {
                assert_eq!(g.edge_count(), n - 1 + extra);
            }
        }
    }

    #[test]
    fn molecule_like_respects_degree_cap() {
        let mut r = rng(2);
        for _ in 0..20 {
            let g = molecule_like(&mut r, 45, 3, 4, |r| r.random_range(0..62) as Label);
            assert!(g.is_connected());
            assert!(g.max_degree() <= 4, "max degree {}", g.max_degree());
            assert!(g.edge_count() >= 44);
            assert!(g.edge_count() <= 47);
        }
    }

    #[test]
    fn molecule_like_tiny_graphs() {
        let mut r = rng(3);
        let g0 = molecule_like(&mut r, 0, 0, 4, |_| 0);
        assert_eq!(g0.vertex_count(), 0);
        let g1 = molecule_like(&mut r, 1, 0, 4, |_| 7);
        assert_eq!((g1.vertex_count(), g1.edge_count()), (1, 0));
        let g2 = molecule_like(&mut r, 2, 5, 4, |_| 1);
        assert_eq!(g2.edge_count(), 1); // rings impossible on 2 vertices
    }

    #[test]
    fn bfs_extract_has_exact_size_and_connectivity() {
        let mut r = rng(4);
        let source = random_connected_graph(&mut r, 40, 20, |r| r.random_range(0..4) as Label);
        for target in [4usize, 8, 12, 16, 20] {
            let q = bfs_extract(&mut r, &source, 0, target).expect("extractable");
            assert_eq!(q.edge_count(), target);
            assert!(q.is_connected());
            assert!(q.labels_dominated_by(&source));
        }
    }

    #[test]
    fn bfs_extract_fails_when_component_too_small() {
        let mut r = rng(5);
        let small = LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        assert!(bfs_extract(&mut r, &small, 0, 10).is_none());
        assert!(bfs_extract(&mut r, &small, 99, 1).is_none());
        assert!(bfs_extract(&mut r, &small, 0, 0).is_none());
    }

    #[test]
    fn random_walk_extract_sizes() {
        let mut r = rng(6);
        let source = random_connected_graph(&mut r, 50, 30, |r| r.random_range(0..4) as Label);
        for target in [4usize, 8, 12, 16, 20] {
            let q = random_walk_extract(&mut r, &source, 3, target).expect("extractable");
            assert_eq!(q.edge_count(), target);
            assert!(q.is_connected());
        }
    }

    #[test]
    fn random_walk_extract_stuck_on_isolated_vertex() {
        let mut r = rng(7);
        let g = LabeledGraph::from_parts(vec![0, 0], &[]).unwrap();
        assert!(random_walk_extract(&mut r, &g, 0, 1).is_none());
    }

    #[test]
    fn extraction_labels_match_source() {
        let mut r = rng(8);
        let source = random_connected_graph(&mut r, 30, 10, |r| r.random_range(0..3) as Label);
        let q = bfs_extract(&mut r, &source, 5, 8).unwrap();
        // every extracted label must exist in the source
        assert!(q.labels_dominated_by(&source));
    }
}
