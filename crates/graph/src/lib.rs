//! Labeled undirected graph primitives for GraphCache+ (GC+).
//!
//! This crate is the lowest substrate of the GC+ reproduction. It provides:
//!
//! * [`LabeledGraph`] — an undirected graph with vertex labels and mutable
//!   edge set (the paper's UA/UR dataset updates mutate edges in place);
//! * [`BitSet`] — a growable bitset used for the per-cached-query answer
//!   sets (`Answer`) and validity indicators (`CGvalid`) of the paper's
//!   Algorithm 2, and for the candidate-set algebra of formulas (1)–(5);
//! * [`generate`] — random graph construction and the two query-extraction
//!   primitives behind the paper's Type A (BFS) and Type B (random walk)
//!   workloads;
//! * [`io`] — a line-based text format for graphs and graph datasets;
//! * [`stats`] — dataset summary statistics (used to certify that the
//!   synthetic AIDS substitute matches the published moments).
//!
//! GC+ follows the paper's model: undirected graphs, labels on vertices
//! only, non-induced subgraph isomorphism. Everything generalizes to edge
//! labels but the reproduction sticks to the published setting.

pub mod bitset;
pub mod canon;
pub mod generate;
pub mod graph;
pub mod io;
pub mod source;
pub mod stats;
pub mod zipf;

pub use bitset::BitSet;
pub use canon::{canonical_form, isomorphic, CanonicalForm};
pub use graph::{GraphError, Label, LabeledGraph, VertexId};
pub use source::GraphSource;
pub use zipf::Zipf;
