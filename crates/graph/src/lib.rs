//! Labeled undirected graph primitives for GraphCache+ (GC+).
//!
//! This crate is the lowest substrate of the GC+ reproduction. It provides:
//!
//! * [`LabeledGraph`] — an undirected graph with vertex labels and mutable
//!   edge set (the paper's UA/UR dataset updates mutate edges in place),
//!   stored in a flat **CSR** layout (`offsets` + concatenated sorted
//!   neighbor rows) so the sub-iso hot reads — `neighbors`, `degree`,
//!   `has_edge` — are contiguous, allocation-free and O(1)/O(log deg).
//!   Each graph carries a cached [`GraphSignature`] (vertex/edge counts,
//!   max degree, label histogram) maintained incrementally across
//!   mutations — the substrate of Method M's O(1) candidate pre-filter;
//! * [`GraphBuilder`] — the amortized batch-construction form: per-row
//!   vectors during generation, frozen into CSR once by
//!   [`GraphBuilder::build`]. Single-edge UA/UR updates splice the CSR
//!   arrays directly (a short `memmove` at this workload's graph sizes);
//! * [`BitSet`] — a growable bitset used for the per-cached-query answer
//!   sets (`Answer`) and validity indicators (`CGvalid`) of the paper's
//!   Algorithm 2, and for the candidate-set algebra of formulas (1)–(5);
//! * [`generate`] — random graph construction and the two query-extraction
//!   primitives behind the paper's Type A (BFS) and Type B (random walk)
//!   workloads;
//! * [`io`] — a line-based text format for graphs and graph datasets;
//! * [`stats`] — dataset summary statistics (used to certify that the
//!   synthetic AIDS substitute matches the published moments).
//!
//! GC+ follows the paper's model: undirected graphs, labels on vertices
//! only, non-induced subgraph isomorphism. Everything generalizes to edge
//! labels but the reproduction sticks to the published setting.

pub mod bitset;
pub mod canon;
pub mod generate;
pub mod graph;
pub mod io;
pub mod source;
pub mod stats;
pub mod zipf;

pub use bitset::BitSet;
pub use canon::{canonical_form, isomorphic, CanonicalForm};
pub use graph::{GraphBuilder, GraphError, GraphSignature, Label, LabeledGraph, VertexId};
pub use source::GraphSource;
pub use zipf::Zipf;
