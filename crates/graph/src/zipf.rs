//! Finite-domain Zipf sampling.
//!
//! The paper draws source graphs, start nodes and pool queries from a Zipf
//! distribution with pdf `p(x) = x^{-α} / ζ(α)` (§7.1, default `α = 1.4`),
//! and the synthetic AIDS substitute uses a Zipf over the label alphabet to
//! mimic chemistry's carbon-dominated label skew. Over a finite domain of
//! `n` ranks the normalizer is the generalized harmonic number
//! `H_{n,α} = Σ_{k=1..n} k^{-α}`; sampling inverts the precomputed CDF with
//! a binary search — O(n) setup, O(log n) per draw, exact.

use rand::Rng;

/// A sampler for `P(rank = k) ∝ (k+1)^{-α}` over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Builds a sampler over `n ≥ 1` ranks with skew `α > 0`.
    ///
    /// Panics if `n == 0` or `α` is not finite and positive.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf domain must be non-empty");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Zipf alpha must be positive and finite"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // guard against FP rounding: last entry must be exactly 1
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        false // domain is never empty by construction
    }

    /// The skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability mass of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws a rank in `0..len()`. Rank 0 is the most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // first index with cdf[i] >= u
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decays() {
        let z = Zipf::new(100, 1.4);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(
                z.pmf(k) <= z.pmf(k - 1) + 1e-12,
                "pmf must be non-increasing"
            );
        }
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn pmf_matches_definition() {
        let z = Zipf::new(5, 2.0);
        let h: f64 = (1..=5).map(|k| (k as f64).powi(-2)).sum();
        for k in 0..5 {
            let expected = ((k + 1) as f64).powi(-2) / h;
            assert!((z.pmf(k) - expected).abs() < 1e-9, "rank {k}");
        }
    }

    #[test]
    fn sampling_is_skewed_correctly() {
        let z = Zipf::new(50, 1.4);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 50];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // empirical frequency of rank 0 within 5% of theory
        let emp0 = counts[0] as f64 / draws as f64;
        assert!(
            (emp0 - z.pmf(0)).abs() < 0.05 * z.pmf(0) + 0.005,
            "emp0={emp0}"
        );
        // monotone-ish decay on the head
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[4]);
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 1.4);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_panics() {
        let _ = Zipf::new(0, 1.4);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = Zipf::new(5, f64::NAN);
    }
}
