//! Abstraction over "a collection of graphs addressable by stable id".
//!
//! Method M (the external SI method GC+ expedites) scans a candidate set of
//! dataset-graph ids and fetches each graph to run the sub-iso test. The
//! dataset store lives in `gc-dataset`, but the scan lives in `gc-subiso`;
//! this trait decouples the two. Ids are stable across ADD/DEL (they are
//! never reused), matching the paper's `BitSet` indexing.

use crate::graph::LabeledGraph;

/// A collection of labeled graphs addressable by stable id.
pub trait GraphSource {
    /// Returns the graph with the given id, or `None` if the id was never
    /// assigned or the graph has been deleted.
    fn graph(&self, id: usize) -> Option<&LabeledGraph>;

    /// Number of ids ever assigned (i.e. `max_id + 1`); deleted ids still
    /// count. Bit positions in answer/validity sets range over `0..span()`.
    fn id_span(&self) -> usize;
}

impl GraphSource for [LabeledGraph] {
    fn graph(&self, id: usize) -> Option<&LabeledGraph> {
        self.get(id)
    }
    fn id_span(&self) -> usize {
        self.len()
    }
}

impl GraphSource for Vec<LabeledGraph> {
    fn graph(&self, id: usize) -> Option<&LabeledGraph> {
        self.get(id)
    }
    fn id_span(&self) -> usize {
        self.len()
    }
}

impl<T: GraphSource + ?Sized> GraphSource for &T {
    fn graph(&self, id: usize) -> Option<&LabeledGraph> {
        (**self).graph(id)
    }
    fn id_span(&self) -> usize {
        (**self).id_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_and_slice_sources() {
        let graphs = vec![
            LabeledGraph::from_parts(vec![0], &[]).unwrap(),
            LabeledGraph::from_parts(vec![1, 1], &[(0, 1)]).unwrap(),
        ];
        assert_eq!(graphs.id_span(), 2);
        assert_eq!(graphs.graph(1).unwrap().edge_count(), 1);
        assert!(graphs.graph(2).is_none());

        let slice: &[LabeledGraph] = &graphs;
        assert_eq!(slice.id_span(), 2);
        assert!(slice.graph(0).is_some());

        let by_ref = &graphs;
        assert_eq!(GraphSource::id_span(&by_ref), 2);
    }
}
