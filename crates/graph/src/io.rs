//! Line-based text IO for graphs and graph datasets.
//!
//! The format is the de-facto standard of the graph-indexing literature
//! (gIndex / CT-Index / GraphQL toolchains all read a variant of it):
//!
//! ```text
//! t <graph-id>        # one block per graph
//! v <vertex-id> <label>
//! e <u> <v>
//! # comments and blank lines are ignored
//! ```
//!
//! Vertex ids inside a block must be dense (`0..n` in order). This is how
//! the synthetic AIDS dataset is persisted so experiment runs are
//! reproducible across processes.

use crate::graph::{GraphBuilder, GraphError, Label, LabeledGraph};

/// Errors raised while parsing the text format.
#[derive(Debug)]
pub enum IoError {
    /// Line could not be parsed.
    Parse { line_no: usize, message: String },
    /// Graph structure violation (duplicate edge etc.).
    Graph { line_no: usize, source: GraphError },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Parse { line_no, message } => {
                write!(f, "parse error on line {line_no}: {message}")
            }
            IoError::Graph { line_no, source } => {
                write!(f, "graph error on line {line_no}: {source}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Graph { source, .. } => Some(source),
            IoError::Parse { .. } => None,
        }
    }
}

fn parse_err(line_no: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line_no,
        message: message.into(),
    }
}

/// Serializes one graph as a `t/v/e` block with the given id.
pub fn write_graph(g: &LabeledGraph, id: usize) -> String {
    let mut out = String::with_capacity(16 * (g.vertex_count() + g.edge_count()));
    out.push_str(&format!("t {id}\n"));
    for v in g.vertices() {
        out.push_str(&format!("v {v} {}\n", g.label(v)));
    }
    for (u, v) in g.edges() {
        out.push_str(&format!("e {u} {v}\n"));
    }
    out
}

/// Serializes a dataset (graph ids are the vector positions).
pub fn write_dataset(graphs: &[LabeledGraph]) -> String {
    let mut out = String::new();
    for (i, g) in graphs.iter().enumerate() {
        out.push_str(&write_graph(g, i));
    }
    out
}

/// Parses a single-graph document (exactly one `t` block, or none — bare
/// `v`/`e` lines also form a graph).
pub fn parse_graph(text: &str) -> Result<LabeledGraph, IoError> {
    let graphs = parse_dataset(text)?;
    match graphs.len() {
        1 => Ok(graphs.into_iter().next().expect("len checked")),
        n => Err(parse_err(
            0,
            format!("expected exactly one graph, found {n}"),
        )),
    }
}

/// Parses a multi-graph dataset document.
pub fn parse_dataset(text: &str) -> Result<Vec<LabeledGraph>, IoError> {
    // accumulate each block in a GraphBuilder (amortized inserts) and
    // freeze to CSR once per graph, instead of splicing per edge line
    let mut graphs: Vec<LabeledGraph> = Vec::new();
    let mut current: Option<GraphBuilder> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        match tag {
            "t" => {
                if let Some(g) = current.take() {
                    graphs.push(g.build());
                }
                current = Some(GraphBuilder::new());
                // the id token is informational; require it to be present
                parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, "missing graph id after 't'"))?;
            }
            "v" => {
                let g = current.get_or_insert_with(GraphBuilder::new);
                let vid: usize = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, "missing vertex id"))?
                    .parse()
                    .map_err(|e| parse_err(line_no, format!("bad vertex id: {e}")))?;
                let label: Label = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, "missing vertex label"))?
                    .parse()
                    .map_err(|e| parse_err(line_no, format!("bad label: {e}")))?;
                if vid != g.vertex_count() {
                    return Err(parse_err(
                        line_no,
                        format!(
                            "vertex ids must be dense: expected {}, got {vid}",
                            g.vertex_count()
                        ),
                    ));
                }
                g.add_vertex(label);
            }
            "e" => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "edge before any vertex"))?;
                let u = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, "missing edge endpoint"))?
                    .parse()
                    .map_err(|e| parse_err(line_no, format!("bad endpoint: {e}")))?;
                let v = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, "missing edge endpoint"))?
                    .parse()
                    .map_err(|e| parse_err(line_no, format!("bad endpoint: {e}")))?;
                g.add_edge(u, v)
                    .map_err(|source| IoError::Graph { line_no, source })?;
            }
            other => {
                return Err(parse_err(line_no, format!("unknown record tag '{other}'")));
            }
        }
    }
    if let Some(g) = current.take() {
        graphs.push(g.build());
    }
    Ok(graphs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_graph() {
        let g = LabeledGraph::from_parts(vec![4, 2, 7], &[(0, 1), (1, 2)]).unwrap();
        let text = write_graph(&g, 0);
        let parsed = parse_graph(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn roundtrip_dataset() {
        let g1 = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]).unwrap();
        let g2 = LabeledGraph::from_parts(vec![3], &[]).unwrap();
        let text = write_dataset(&[g1.clone(), g2.clone()]);
        let parsed = parse_dataset(&text).unwrap();
        assert_eq!(parsed, vec![g1, g2]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nt 0\nv 0 1\n  \n# mid\nv 1 2\ne 0 1\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_sparse_vertex_ids() {
        let err = parse_graph("t 0\nv 1 5\n").unwrap_err();
        assert!(matches!(err, IoError::Parse { line_no: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = parse_graph("t 0\nv 0 1\nv 1 1\ne 0 1\ne 1 0\n").unwrap_err();
        assert!(matches!(err, IoError::Graph { line_no: 5, .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_tag_and_bad_numbers() {
        assert!(parse_dataset("x 1\n").is_err());
        assert!(parse_dataset("t 0\nv zero 1\n").is_err());
        assert!(parse_dataset("t 0\nv 0\n").is_err());
        assert!(parse_dataset("e 0 1\n").is_err());
        assert!(parse_dataset("t\n").is_err());
    }

    #[test]
    fn multiple_graphs_expected_one() {
        let text = "t 0\nv 0 1\nt 1\nv 0 1\n";
        assert!(parse_graph(text).is_err());
        assert_eq!(parse_dataset(text).unwrap().len(), 2);
    }
}
