//! A growable bitset with the set algebra GC+ needs.
//!
//! The paper stores both the answer set (`Answer`) and the dataset-graph
//! validity indicator (`CGvalid`) of every cached query as a
//! `java.util.BitSet`, indexed by dataset-graph id (ids are never reused, so
//! positions are stable). Algorithm 2 extends `CGvalid` with `false` bits
//! when new dataset graphs appear; reads past the end return `false`, like
//! Java's `BitSet.get`. This implementation mirrors those semantics.
//!
//! The candidate-set pruning of §6 is pure bit algebra:
//!
//! * formula (1): `union` of `intersection`s,
//! * formula (2): `difference`,
//! * formula (4)/(5): `(csm \ valid) ∪ (csm ∩ answer)` — see
//!   [`BitSet::retain_super_hit`].

const BITS: usize = u64::BITS as usize;

/// A growable bitset. Bit positions are `usize`; unset/out-of-range
/// positions read as `false`.
///
/// Equality and hashing are *semantic*: two bitsets with the same set of
/// one-positions are equal regardless of how many trailing zero blocks
/// either allocated (mutating operations may leave zero tails behind).
#[derive(Clone, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.blocks.len() <= other.blocks.len() {
            (&self.blocks, &other.blocks)
        } else {
            (&other.blocks, &self.blocks)
        };
        short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&b| b == 0)
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // hash only up to the last nonzero block, so equal sets hash equal
        let end = self
            .blocks
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        self.blocks[..end].hash(state);
    }
}

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self { blocks: Vec::new() }
    }

    /// Number of 64-bit blocks currently resident (allocation footprint,
    /// not the count of set bits) — feeds memory accounting.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Creates an empty bitset with room for `nbits` bits pre-allocated.
    pub fn with_capacity(nbits: usize) -> Self {
        Self {
            blocks: Vec::with_capacity(nbits.div_ceil(BITS)),
        }
    }

    /// Creates a bitset with bits `0..nbits` all set — the "full validity"
    /// indicator a query receives when it enters the cache (it was executed
    /// against the then-current dataset, so it holds validity for every
    /// graph id below the dataset's high-water mark).
    pub fn all_set(nbits: usize) -> Self {
        let mut s = Self::new();
        if nbits == 0 {
            return s;
        }
        let nblocks = nbits.div_ceil(BITS);
        s.blocks = vec![u64::MAX; nblocks];
        let spare = nblocks * BITS - nbits;
        if spare > 0 {
            *s.blocks.last_mut().expect("nblocks > 0") >>= spare;
        }
        s
    }

    /// Builds a bitset from an iterator of set positions.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.set(i, true);
        }
        s
    }

    /// Reads bit `i`; positions beyond the allocated blocks read `false`
    /// (Java `BitSet.get` semantics, relied upon by Algorithm 2 when a
    /// cached `Answer` predates newly added dataset graphs).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.blocks.get(i / BITS) {
            Some(b) => (b >> (i % BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Writes bit `i`, growing the backing storage as needed.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        let block = i / BITS;
        if block >= self.blocks.len() {
            if !value {
                return; // clearing an out-of-range bit is a no-op
            }
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (i % BITS);
        if value {
            self.blocks[block] |= mask;
        } else {
            self.blocks[block] &= !mask;
        }
    }

    /// Ensures positions `0..nbits` are addressable; new bits are `false`.
    /// Mirrors Algorithm 2 line 4–6 ("extend `CGvalid` to length `m+1` by
    /// assigning false to extended bits").
    pub fn extend_to(&mut self, nbits: usize) {
        let need = nbits.div_ceil(BITS);
        if need > self.blocks.len() {
            self.blocks.resize(need, 0);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all bits (keeps allocation).
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Position of the highest set bit, if any.
    pub fn max_set_bit(&self) -> Option<usize> {
        for (bi, &b) in self.blocks.iter().enumerate().rev() {
            if b != 0 {
                return Some(bi * BITS + (BITS - 1 - b.leading_zeros() as usize));
            }
        }
        None
    }

    /// In-place union: `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        let n = other.blocks.len().min(self.blocks.len());
        for (a, b) in self.blocks[..n].iter_mut().zip(&other.blocks[..n]) {
            *a &= b;
        }
        for a in &mut self.blocks[n..] {
            *a = 0;
        }
    }

    /// In-place difference: `self &= !other` (formula (2): `CS_M \ Answer_sub`).
    pub fn difference_with(&mut self, other: &BitSet) {
        let n = other.blocks.len().min(self.blocks.len());
        for (a, b) in self.blocks[..n].iter_mut().zip(&other.blocks[..n]) {
            *a &= !b;
        }
    }

    /// Returns `self & other` without mutating either operand.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut r = self.clone();
        r.intersect_with(other);
        r
    }

    /// Returns `self | other` without mutating either operand.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// Returns `self \ other` without mutating either operand.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut r = self.clone();
        r.difference_with(other);
        r
    }

    /// Supergraph-case pruning step (formulas (4)+(5) fused):
    /// keeps of `self` (the running candidate set) only the graphs that are
    /// *not provably excluded* by a supergraph hit with the given validity
    /// and answer sets, i.e. `self ∩ (¬valid ∪ answer)` — equivalently
    /// `(self \ valid) ∪ (self ∩ answer)`.
    ///
    /// A graph `G` survives iff the hit's knowledge about `G` is stale
    /// (`!valid.get(G)`) or `G` did contain the cached query (`answer.get(G)`).
    pub fn retain_super_hit(&mut self, valid: &BitSet, answer: &BitSet) {
        for (i, a) in self.blocks.iter_mut().enumerate() {
            let v = valid.blocks.get(i).copied().unwrap_or(0);
            let ans = answer.blocks.get(i).copied().unwrap_or(0);
            *a &= !v | ans;
        }
    }

    /// `true` iff every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        for (i, &a) in self.blocks.iter().enumerate() {
            let b = other.blocks.get(i).copied().unwrap_or(0);
            if a & !b != 0 {
                return false;
            }
        }
        true
    }

    /// `true` iff `self` and `other` share no set bit.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Iterator over set bit positions in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`BitSet`].
pub struct Ones<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.block_idx * BITS + tz)
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self::from_indices(iter)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reads_false() {
        let s = BitSet::new();
        assert!(!s.get(0));
        assert!(!s.get(1_000_000));
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.max_set_bit(), None);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = BitSet::new();
        for &i in &[0usize, 1, 63, 64, 65, 127, 128, 1000] {
            s.set(i, true);
            assert!(s.get(i), "bit {i} should be set");
        }
        assert_eq!(s.count_ones(), 8);
        s.set(64, false);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 7);
        assert_eq!(s.max_set_bit(), Some(1000));
    }

    #[test]
    fn clearing_out_of_range_is_noop() {
        let mut s = BitSet::new();
        s.set(500, false);
        assert!(s.blocks.is_empty());
    }

    #[test]
    fn all_set_has_exact_prefix() {
        for n in [0usize, 1, 63, 64, 65, 100, 128, 129] {
            let s = BitSet::all_set(n);
            assert_eq!(s.count_ones(), n, "n={n}");
            if n > 0 {
                assert!(s.get(n - 1));
            }
            assert!(!s.get(n));
            assert!(!s.get(n + 100));
        }
    }

    #[test]
    fn union_intersection_difference() {
        let a = BitSet::from_indices([1usize, 2, 3, 100]);
        let b = BitSet::from_indices([2usize, 3, 4, 200]);

        let u = a.union(&b);
        assert_eq!(
            u.iter_ones().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 100, 200]
        );

        let i = a.intersection(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![2, 3]);

        let d = a.difference(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1, 100]);
    }

    #[test]
    fn intersection_clears_tail_blocks() {
        let mut a = BitSet::from_indices([600usize]);
        let b = BitSet::from_indices([1usize]);
        a.intersect_with(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn retain_super_hit_matches_formula() {
        // candidate set {0,1,2,3}; hit valid on {1,3}, answered {2,3}.
        // survivor = (cs \ valid) ∪ (cs ∩ answer) = {0,2} ∪ {2,3} = {0,2,3}.
        let mut cs = BitSet::from_indices([0usize, 1, 2, 3]);
        let valid = BitSet::from_indices([1usize, 3]);
        let answer = BitSet::from_indices([2usize, 3]);
        cs.retain_super_hit(&valid, &answer);
        assert_eq!(cs.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn retain_super_hit_shorter_operands() {
        let mut cs = BitSet::from_indices([0usize, 70, 140]);
        let valid = BitSet::from_indices([0usize]); // one block only
        let answer = BitSet::new();
        cs.retain_super_hit(&valid, &answer);
        // 0 is valid & unanswered -> excluded; 70/140 unknown -> kept.
        assert_eq!(cs.iter_ones().collect::<Vec<_>>(), vec![70, 140]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_indices([1usize, 2]);
        let b = BitSet::from_indices([1usize, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_disjoint(&BitSet::from_indices([4usize, 500])));
        assert!(!a.is_disjoint(&b));
        // a longer "subset" with a high set bit is not a subset
        let c = BitSet::from_indices([1usize, 999]);
        assert!(!c.is_subset_of(&b));
        assert!(b.is_subset_of(&b));
    }

    #[test]
    fn extend_to_reads_false() {
        let mut s = BitSet::new();
        s.extend_to(129);
        assert!(!s.get(128));
        assert_eq!(s.blocks.len(), 3);
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn iter_ones_order_and_completeness() {
        let idx = vec![0usize, 5, 63, 64, 127, 128, 300];
        let s = BitSet::from_indices(idx.clone());
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn debug_format_lists_members() {
        let s = BitSet::from_indices([3usize, 7]);
        assert_eq!(format!("{s:?}"), "{3, 7}");
    }

    #[test]
    fn equality_ignores_trailing_zero_blocks() {
        let empty = BitSet::new();
        let mut zeroed = BitSet::new();
        zeroed.extend_to(300);
        assert_eq!(empty, zeroed);
        assert_eq!(zeroed, empty);

        let mut a = BitSet::from_indices([5usize]);
        let mut b = BitSet::from_indices([5usize, 200]);
        b.set(200, false);
        assert_eq!(a, b);
        // hashes must agree for equal values
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &BitSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
        a.set(64, true);
        assert_ne!(a, b);
    }
}
