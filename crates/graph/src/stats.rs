//! Dataset summary statistics.
//!
//! The paper characterizes AIDS by its vertex/edge moments ("40,000 graphs,
//! each with on average ≈45 vertices (std.dev.: 22, max: 245) and ≈47 edges
//! (std.dev.: 23, max: 250)"). The synthetic substitute is validated
//! against those numbers with the summaries computed here; the experiment
//! harness also prints them so EXPERIMENTS.md can record the dataset shape
//! actually used in each run.

use crate::graph::{Label, LabeledGraph};

/// Moments of a scalar per-graph quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: usize,
    /// Maximum observed value.
    pub max: usize,
}

impl Moments {
    fn from_values(values: &[usize]) -> Moments {
        if values.is_empty() {
            return Moments {
                mean: 0.0,
                std_dev: 0.0,
                min: 0,
                max: 0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<usize>() as f64 / n;
        let var = values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Moments {
            mean,
            std_dev: var.sqrt(),
            min: *values.iter().min().expect("non-empty"),
            max: *values.iter().max().expect("non-empty"),
        }
    }
}

/// Summary statistics of a graph dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Number of graphs summarized.
    pub graph_count: usize,
    /// Vertex-count moments across graphs.
    pub vertices: Moments,
    /// Edge-count moments across graphs.
    pub edges: Moments,
    /// Distinct labels observed.
    pub label_count: usize,
    /// Global label histogram sorted by descending frequency.
    pub label_frequencies: Vec<(Label, u64)>,
}

impl DatasetStats {
    /// Computes statistics over any graph iterator.
    pub fn compute<'a, I>(graphs: I) -> DatasetStats
    where
        I: IntoIterator<Item = &'a LabeledGraph>,
    {
        let mut vcounts = Vec::new();
        let mut ecounts = Vec::new();
        let mut freq: std::collections::HashMap<Label, u64> = std::collections::HashMap::new();
        for g in graphs {
            vcounts.push(g.vertex_count());
            ecounts.push(g.edge_count());
            for &l in g.labels() {
                *freq.entry(l).or_insert(0) += 1;
            }
        }
        let mut label_frequencies: Vec<(Label, u64)> = freq.into_iter().collect();
        label_frequencies.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        DatasetStats {
            graph_count: vcounts.len(),
            vertices: Moments::from_values(&vcounts),
            edges: Moments::from_values(&ecounts),
            label_count: label_frequencies.len(),
            label_frequencies,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "graphs: {}", self.graph_count)?;
        writeln!(
            f,
            "vertices: mean {:.1}, std {:.1}, min {}, max {}",
            self.vertices.mean, self.vertices.std_dev, self.vertices.min, self.vertices.max
        )?;
        writeln!(
            f,
            "edges:    mean {:.1}, std {:.1}, min {}, max {}",
            self.edges.mean, self.edges.std_dev, self.edges.min, self.edges.max
        )?;
        write!(f, "labels:   {} distinct", self.label_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dataset() {
        let s = DatasetStats::compute(std::iter::empty());
        assert_eq!(s.graph_count, 0);
        assert_eq!(s.vertices.mean, 0.0);
        assert_eq!(s.label_count, 0);
    }

    #[test]
    fn simple_moments() {
        let g1 = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
        let g2 = LabeledGraph::from_parts(vec![1, 1, 1, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = DatasetStats::compute([&g1, &g2]);
        assert_eq!(s.graph_count, 2);
        assert_eq!(s.vertices.mean, 3.0);
        assert_eq!(s.vertices.min, 2);
        assert_eq!(s.vertices.max, 4);
        assert_eq!(s.edges.mean, 2.0);
        assert_eq!(s.vertices.std_dev, 1.0);
        assert_eq!(s.label_count, 2);
        // label 1 appears 4 times, label 0 twice
        assert_eq!(s.label_frequencies[0], (1, 4));
        assert_eq!(s.label_frequencies[1], (0, 2));
    }

    #[test]
    fn display_is_readable() {
        let g = LabeledGraph::from_parts(vec![0], &[]).unwrap();
        let s = DatasetStats::compute([&g]);
        let text = format!("{s}");
        assert!(text.contains("graphs: 1"));
        assert!(text.contains("labels:   1 distinct"));
    }
}
