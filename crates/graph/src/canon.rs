//! Canonical forms for small labeled graphs.
//!
//! A *canonical form* is an isomorphism-invariant certificate: two graphs
//! have equal canonical forms iff they are isomorphic. The SPARQL cache of
//! the paper's ref \[22\] identifies exact cache hits by canonical labeling;
//! GC+ instead detects exact matches with a (signature-filtered) sub-iso
//! probe because it must discover *containment* relations anyway. This
//! module provides the canonical-form alternative for the places where
//! only exact isomorphism matters: counting distinct queries in workload
//! analysis, deduplicating query pools, and testing.
//!
//! The algorithm is the classic refine-then-branch scheme:
//!
//! 1. **Iterative color refinement** (1-WL): vertices start colored by
//!    label and are repeatedly split by the multiset of neighbor colors
//!    until stable;
//! 2. **Branching**: if a color class has several vertices, individualize
//!    each in turn and recurse, keeping the lexicographically smallest
//!    resulting adjacency encoding.
//!
//! Worst-case exponential (graph isomorphism!), but query graphs are ≤ ~21
//! edges and molecule-like, where refinement almost always discretizes.

use crate::graph::{LabeledGraph, VertexId};

/// An isomorphism-invariant certificate. Equal ⟺ isomorphic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalForm(Vec<u64>);

/// Computes the canonical form of a graph.
pub fn canonical_form(g: &LabeledGraph) -> CanonicalForm {
    let n = g.vertex_count();
    if n == 0 {
        return CanonicalForm(Vec::new());
    }
    let initial = refine(g, &initial_colors(g));
    let mut best: Option<Vec<u64>> = None;
    branch(g, &initial, &mut best);
    CanonicalForm(best.expect("n > 0 yields an encoding"))
}

/// `true` iff the two graphs are isomorphic (label-preserving).
pub fn isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.vertex_count() != b.vertex_count()
        || a.edge_count() != b.edge_count()
        || a.label_histogram() != b.label_histogram()
    {
        return false;
    }
    canonical_form(a) == canonical_form(b)
}

/// Initial coloring: by vertex label (dense color ids).
fn initial_colors(g: &LabeledGraph) -> Vec<u32> {
    let mut labels: Vec<u16> = g.labels().to_vec();
    labels.sort_unstable();
    labels.dedup();
    g.labels()
        .iter()
        .map(|l| labels.binary_search(l).expect("label present") as u32)
        .collect()
}

/// 1-WL color refinement until fixpoint. Colors are renumbered densely by
/// (old color, neighbor-color multiset) rank, which keeps them
/// isomorphism-invariant.
fn refine(g: &LabeledGraph, colors: &[u32]) -> Vec<u32> {
    let n = g.vertex_count();
    let mut colors = colors.to_vec();
    loop {
        // signature: (own color, sorted neighbor colors)
        let mut sigs: Vec<(u32, Vec<u32>)> = (0..n)
            .map(|v| {
                let mut ns: Vec<u32> = g
                    .neighbors(v as VertexId)
                    .iter()
                    .map(|&w| colors[w as usize])
                    .collect();
                ns.sort_unstable();
                (colors[v], ns)
            })
            .collect();
        let mut sorted: Vec<&(u32, Vec<u32>)> = sigs.iter().collect();
        sorted.sort();
        sorted.dedup();
        let new_colors: Vec<u32> = sigs
            .iter()
            .map(|s| sorted.binary_search(&s).expect("own signature") as u32)
            .collect();
        let class_count_old = {
            let mut c = colors.clone();
            c.sort_unstable();
            c.dedup();
            c.len()
        };
        let class_count_new = sorted.len();
        sigs.clear();
        if class_count_new == class_count_old {
            return new_colors;
        }
        colors = new_colors;
    }
}

/// Encodes the graph under the vertex order induced by discrete colors.
/// The encoding lists `n`, per-vertex labels, then the upper-triangular
/// adjacency bits packed into u64 words — totally ordered, so the minimum
/// over branchings is canonical.
fn encode(g: &LabeledGraph, colors: &[u32]) -> Vec<u64> {
    let n = g.vertex_count();
    // order[i] = vertex with color i (colors are a permutation 0..n here)
    let mut order = vec![0 as VertexId; n];
    for (v, &c) in colors.iter().enumerate() {
        order[c as usize] = v as VertexId;
    }
    let mut out = Vec::with_capacity(1 + n + n * n / 128 + 1);
    out.push(n as u64);
    for &v in &order {
        out.push(g.label(v) as u64);
    }
    let mut word = 0u64;
    let mut bits = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            let bit = g.has_edge(order[i], order[j]) as u64;
            word = (word << 1) | bit;
            bits += 1;
            if bits == 64 {
                out.push(word);
                word = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        out.push(word << (64 - bits));
    }
    out
}

/// `true` iff every vertex has a unique color.
fn discrete(colors: &[u32]) -> bool {
    let mut seen = vec![false; colors.len()];
    for &c in colors {
        if seen[c as usize] {
            return false;
        }
        seen[c as usize] = true;
    }
    true
}

fn branch(g: &LabeledGraph, colors: &[u32], best: &mut Option<Vec<u64>>) {
    if discrete(colors) {
        let enc = encode(g, colors);
        match best {
            Some(b) if *b <= enc => {}
            _ => *best = Some(enc),
        }
        return;
    }
    // smallest non-singleton color class, individualize each member
    let n = colors.len();
    let mut class_size = vec![0u32; n];
    for &c in colors {
        class_size[c as usize] += 1;
    }
    let target_color = (0..n as u32)
        .filter(|&c| class_size[c as usize] > 1)
        .min_by_key(|&c| class_size[c as usize])
        .expect("non-discrete coloring has a splittable class");

    for v in 0..n {
        if colors[v] == target_color {
            // individualize v: give it a fresh color below its class, then
            // re-refine. Shift is isomorphism-invariant because it depends
            // only on (color, chosen-class) structure.
            let mut next = colors.to_vec();
            for (u, c) in next.iter_mut().enumerate() {
                if *c > target_color || (u != v && *c == target_color) {
                    *c += 1;
                }
            }
            let refined = refine(g, &next);
            branch(g, &refined, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_connected_graph;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    /// Random relabeling of vertex ids (graph isomorphism witness).
    fn permute(graph: &LabeledGraph, rng: &mut StdRng) -> LabeledGraph {
        let n = graph.vertex_count();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(rng);
        let mut labels = vec![0u16; n];
        for v in 0..n {
            labels[perm[v] as usize] = graph.label(v as u32);
        }
        let edges: Vec<(u32, u32)> = graph
            .edges()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        LabeledGraph::from_parts(labels, &edges).unwrap()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(canonical_form(&LabeledGraph::new()), CanonicalForm(vec![]));
        let a = g(vec![3], &[]);
        let b = g(vec![3], &[]);
        let c = g(vec![4], &[]);
        assert_eq!(canonical_form(&a), canonical_form(&b));
        assert_ne!(canonical_form(&a), canonical_form(&c));
    }

    #[test]
    fn permutation_invariance() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..60 {
            let n = rng.random_range(2..10usize);
            let extra = rng.random_range(0..4usize);
            let graph = random_connected_graph(&mut rng, n, extra, |r| r.random_range(0..3u16));
            let shuffled = permute(&graph, &mut rng);
            assert!(
                isomorphic(&graph, &shuffled),
                "seed {seed}: permutation must stay isomorphic"
            );
            assert_eq!(
                canonical_form(&graph),
                canonical_form(&shuffled),
                "seed {seed}: canonical forms must agree"
            );
        }
    }

    #[test]
    fn distinguishes_non_isomorphic_same_signature() {
        // same |V|, |E|, label histogram, degree sequence — different
        // structure: C6 vs two triangles
        let c6 = g(
            vec![0; 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let two_triangles = g(
            vec![0; 6],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        );
        assert_eq!(c6.size_signature(), two_triangles.size_signature());
        assert_eq!(c6.degree_sequence(), two_triangles.degree_sequence());
        assert!(!isomorphic(&c6, &two_triangles));
    }

    #[test]
    fn regular_graphs_need_branching() {
        // 3-regular pair: K4 minus perfect matching (C4) vs ... use the
        // classic C6 vs K3,3-minus-matching style case: C8 vs two C4s
        let c8 = g(
            vec![0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let two_c4 = g(
            vec![0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        // both 2-regular: 1-WL alone cannot split them; branching must
        assert!(!isomorphic(&c8, &two_c4));
        // and each is isomorphic to a shuffled copy of itself
        let mut rng = StdRng::seed_from_u64(9);
        assert!(isomorphic(&c8, &permute(&c8, &mut rng)));
        assert!(isomorphic(&two_c4, &permute(&two_c4, &mut rng)));
    }

    #[test]
    fn labels_break_automorphism() {
        let p1 = g(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let p2 = g(vec![1, 0, 0], &[(0, 1), (1, 2)]);
        // different label positions on a path: 0-1-0 vs 1-0-0
        assert!(!isomorphic(&p1, &p2));
        let p1_flipped = g(vec![0, 1, 0], &[(2, 1), (1, 0)]);
        assert!(isomorphic(&p1, &p1_flipped));
    }

    #[test]
    fn agrees_with_subiso_based_check() {
        // cross-validate against the two-way containment definition using
        // the brute-force idea: for small graphs, isomorphic ⟺ mutual
        // containment with equal sizes (checked structurally here via
        // permutation tests above; this test pins a few concrete pairs)
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let path = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(!isomorphic(&tri, &path));
        assert!(isomorphic(&tri, &tri.clone()));
    }
}
